// Command scand serves ATPG as a service: an HTTP/JSON job API over
// internal/jobs. Clients submit a flow (generate, translate, sharded
// fault simulation or sharded compaction) over catalog circuits; tasks
// queue tenant-fair in priority order — disjoint Slots-aligned fault
// shards of a simulate job, restore-then-omission-chunk chains of a
// compact job — and every job is budgeted, checkpointed, observable as
// a live JSONL event stream, and resumable after a cancel, a drain or
// a process restart with results bit-identical to an uninterrupted
// run.
//
// Tasks run on the in-process pool (-workers), on remote cmd/scanworker
// processes claiming leases over HTTP (-workers -1 for remote-only), or
// both. A lease not heartbeated within -lease-ttl is reclaimed and its
// task re-run from the last checkpoint the worker uploaded, so a killed
// worker costs at most one heartbeat of progress and never a byte of
// the result.
//
// Usage:
//
//	scand -addr 127.0.0.1:8080 -data /var/lib/scand -workers 4
//
// SIGTERM or SIGINT drains gracefully: in-flight tasks checkpoint and
// stop at their next run-control poll, interrupted jobs settle
// suspended and resumable, and the process exits once every job is
// settled and persisted. A second signal exits immediately.
//
// Use cmd/scanctl to talk to the server, or curl directly (see the
// README's "Serving jobs" section).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/failpoint"
	"repro/internal/jobs"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address; port 0 picks a free port (see -addr-file)")
		data       = flag.String("data", "scand-data", "data directory: one subdirectory per job (status, events, checkpoints, results)")
		workers    = flag.Int("workers", 0, "task worker count (0 = GOMAXPROCS, negative = none: remote scanworkers only)")
		leaseTTL   = flag.Duration("lease-ttl", 15*time.Second, "remote worker lease TTL; a lease not heartbeated within it is reclaimed and its task re-queued")
		quota      = flag.Int("tenant-quota", 0, "max in-flight tasks per tenant across local and remote workers (0 = unlimited)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		failpoints = flag.String("failpoints", "", "arm fault-injection sites for failure testing, e.g. 'runctl.store.rename=err@2' (see internal/failpoint)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "scand: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "scand: ", log.LstdFlags)

	if *failpoints != "" {
		if err := failpoint.Enable(*failpoints, 1); err != nil {
			logger.Fatal(err)
		}
	}

	srv, err := jobs.NewServer(jobs.Options{
		DataDir:     *data,
		Workers:     *workers,
		LeaseTTL:    *leaseTTL,
		TenantQuota: *quota,
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatal(err)
		}
	}
	logger.Printf("serving %d workers on http://%s (data %s)", srv.Workers(), bound, *data)

	hs := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Printf("%v — draining: in-flight jobs checkpoint and settle resumable (signal again to quit now)", s)
	go func() {
		<-sig
		os.Exit(130)
	}()

	// Drain the job engine first: queued tasks become suspended work,
	// running tasks checkpoint and stop at their next poll, and settling
	// closes every live event stream — so the HTTP shutdown afterwards
	// has no long-lived responses left to wait on.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	if err := <-httpDone; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	logger.Printf("drained; all jobs settled")
}
