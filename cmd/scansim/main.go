// Command scansim fault-simulates a test sequence against a scan
// circuit and reports coverage and test application time. Sequences are
// text files with one 0/1/x vector per line (the format logic.Sequence
// prints); widths must match the scan circuit's input count.
//
// Usage:
//
//	scangen -circuit s27 -print-seq > /tmp/seq.txt   # or any source
//	scansim -circuit s27 -seq /tmp/seq.txt
//	scansim -circuit s27 -gen -out /tmp/seq.txt      # generate and save
//
// Long runs can be budgeted and made crash-safe with -timeout,
// -checkpoint and -resume (see scangen for the full description): an
// interrupted run reports partial coverage and exits 0; resuming it
// produces results bit-identical to an uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/circuits"
	"repro/internal/diagnose"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/runctl"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
	"repro/internal/testprog"
	"repro/internal/transition"
)

func main() {
	var (
		circuit    = flag.String("circuit", "", "catalog circuit name")
		seqFile    = flag.String("seq", "", "sequence file to simulate")
		gen        = flag.Bool("gen", false, "generate a sequence instead of reading one")
		out        = flag.String("out", "", "write the sequence to this file")
		seed       = flag.Uint64("seed", 1, "random seed for -gen")
		noCollapse = flag.Bool("no-collapse", false, "disable fault equivalence collapsing")
		prog       = flag.Bool("prog", false, "print the sequence as a segmented tester program")
		diag       = flag.Bool("diag", false, "build a fault dictionary and report diagnostic resolution")
		verify     = flag.Bool("verify", false, "validate the sequence's structure (width, fully specified)")
		trans      = flag.Bool("transition", false, "also grade the sequence for gross-delay transition faults")
		workers    = flag.Int("workers", 0, "fault-simulation worker count (0 = all cores; results are identical for every value)")
		kernel     = flag.String("kernel", "event", "fault-simulation kernel: event or full (results are identical)")
	)
	rc := runctl.RegisterFlags("scansim")
	oc := obs.RegisterFlags("scansim")
	pf := prof.Register()
	flag.Parse()
	var simOpts sim.Options
	switch *kernel {
	case "event":
		simOpts.Kernel = sim.KernelEvent
	case "full":
		simOpts.Kernel = sim.KernelFull
	default:
		fmt.Fprintf(os.Stderr, "scansim: unknown -kernel %q (want event or full)\n", *kernel)
		os.Exit(2)
	}
	if err := pf.Start(); err != nil {
		fail(err)
	}
	defer func() {
		if err := pf.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "scansim:", err)
		}
	}()
	if *circuit == "" || (*seqFile == "" && !*gen) {
		fmt.Fprintln(os.Stderr, "scansim: need -circuit NAME and (-seq FILE or -gen)")
		flag.Usage()
		os.Exit(2)
	}
	ctl, err := rc.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scansim:", err)
		os.Exit(2)
	}
	ort, err := oc.Build(rc.Resume)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scansim:", err)
		os.Exit(2)
	}
	defer func() {
		if s := ort.Summary(); s != nil {
			if out := report.ObsSummary(*s); out != "" {
				fmt.Println()
				fmt.Print(out)
			}
		}
		if err := ort.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "scansim:", err)
		}
	}()
	c, err := circuits.Load(*circuit)
	if err != nil {
		fail(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		fail(err)
	}
	faults := fault.Universe(sc.Scan, !*noCollapse)

	var seq logic.Sequence
	if *gen {
		res := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: *seed, Workers: *workers, Control: ctl, Obs: ort.Observer()})
		if res.Err != nil {
			fail(res.Err)
		}
		seq = res.Sequence
		if res.Status.Stopped() {
			// Partial generation: simulating (and checkpointing a
			// simulation of) a sequence that will grow on resume would
			// poison the "sim" checkpoint section; report and stop here.
			if *out != "" {
				if err := os.WriteFile(*out, []byte(seq.String()+"\n"), 0o644); err != nil {
					fail(err)
				}
			}
			fmt.Printf("generated %d vectors so far, detected %d of %d faults\n",
				len(seq), res.NumDetected(), len(faults))
			fmt.Println(report.RunBanner(res.Status, rc.Checkpoint))
			return
		}
	} else {
		data, err := os.ReadFile(*seqFile)
		if err != nil {
			fail(err)
		}
		seq, err = logic.ParseSequence(string(data))
		if err != nil {
			fail(err)
		}
		if len(seq) > 0 && len(seq[0]) != sc.Scan.NumInputs() {
			fail(fmt.Errorf("vector width %d, circuit has %d inputs", len(seq[0]), sc.Scan.NumInputs()))
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(seq.String()+"\n"), 0o644); err != nil {
			fail(err)
		}
	}

	if *verify {
		if err := check.Sequence(sc.Scan, seq, true); err != nil {
			fail(err)
		}
		fmt.Println("sequence structure: OK (widths match, fully specified)")
	}
	sm := sim.NewSimulator(sc.Scan, *workers)
	sm.Observe(ort.Observer())
	simOpts.Control = ctl
	res := sm.Run(seq, faults, simOpts)
	if res.Err != nil {
		fail(res.Err)
	}
	det := res.NumDetected()
	fmt.Printf("circuit %s_scan: %d inputs, %d state variables\n",
		*circuit, sc.Scan.NumInputs(), sc.NSV)
	fmt.Printf("sequence length (clock cycles): %d\n", len(seq))
	fmt.Printf("scan vectors (scan_sel=1):      %d\n", sc.CountScanVectors(seq))
	fmt.Printf("faults: %d, detected: %d (%.2f%%)\n",
		len(faults), det, fault.Coverage(det, len(faults)))
	if *prog {
		p := testprog.Split(sc, seq)
		st := p.Stats()
		fmt.Printf("tester program: %d scan ops (%d limited, %d complete), %d scan cycles, %d functional cycles\n",
			st.ScanOps, st.LimitedScanOps, st.CompleteScanOps, st.ScanCycles, st.FuncCycles)
		fmt.Print(p.Format())
	}
	if *trans {
		tf := transition.Universe(sc.Scan)
		tr := transition.Run(sc.Scan, seq, tf)
		fmt.Printf("transition faults: %d, detected: %d (%.2f%%) — at-speed coverage for free\n",
			len(tf), tr.NumDetected(), tr.Coverage())
	}
	if *diag {
		d := diagnose.BuildWith(sm, seq, faults)
		groups := d.Equivalent()
		fmt.Printf("fault dictionary: diagnostic resolution %.3f, %d indistinguishable groups\n",
			d.Resolution(), len(groups))
	}
	// Detection-time histogram in ten buckets.
	if len(seq) > 0 && det > 0 {
		buckets := make([]int, 10)
		for _, t := range res.DetectedAt {
			if t == sim.NotDetected {
				continue
			}
			b := t * 10 / len(seq)
			if b > 9 {
				b = 9
			}
			buckets[b]++
		}
		fmt.Println("detection-time histogram (deciles of the sequence):")
		for b, n := range buckets {
			fmt.Printf("  %3d%%-%3d%%: %d\n", b*10, (b+1)*10, n)
		}
	}
	if ctl != nil {
		fmt.Println(report.RunBanner(res.Status, rc.Checkpoint))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "scansim:", err)
	os.Exit(1)
}
