// Command scantrans runs the paper's test set translation flow
// (Section 3) and the compaction of translated sequences, regenerating
// Tables 2, 3 and 7.
//
// Usage:
//
//	scantrans -circuit s27 -print-testset     # Table 2: conventional test set
//	scantrans -circuit s27 -print-translated  # Table 3: the flat sequence
//	scantrans -suite small                    # Table 7 over the small suite
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runctl"
)

func main() {
	var (
		circuit    = flag.String("circuit", "", "single catalog circuit to run")
		suite      = flag.String("suite", "", "run a whole suite: small, medium or full")
		seed       = flag.Uint64("seed", 1, "random seed")
		printSet   = flag.Bool("print-testset", false, "with -circuit: print the conventional test set")
		printTrans = flag.Bool("print-translated", false, "with -circuit: print the translated sequence")
		printFinal = flag.Bool("print-compacted", false, "with -circuit: print the compacted sequence")
		noCollapse = flag.Bool("no-collapse", false, "disable fault equivalence collapsing")
		omitCap    = flag.Int("omit-cap", 0, "skip omission when the restored sequence exceeds this many vectors (0 = never; skips are warned)")
		engine     = flag.String("compact-engine", "auto", "compaction trial engine: auto, incremental or scratch (output identical)")
		adiOrder   = flag.Bool("adi-order", false, "restore faults in increasing accidental-detection-index order (changes the output)")
		verbose    = flag.Bool("v", false, "progress to stderr")
	)
	rc := runctl.RegisterFlags("scantrans")
	oc := obs.RegisterFlags("scantrans")
	flag.Parse()
	ctl, err := rc.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scantrans:", err)
		os.Exit(2)
	}
	if *suite != "" && ctl != nil && ctl.Store != nil {
		fmt.Fprintln(os.Stderr, "scantrans: -checkpoint needs a single -circuit run (suite circuits would fight over the file)")
		os.Exit(2)
	}
	ort, err := oc.Build(rc.Resume)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scantrans:", err)
		os.Exit(2)
	}

	eng, err := compact.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scantrans:", err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Collapse = !*noCollapse
	cfg.OmitLenCap = *omitCap
	cfg.Engine = eng
	if *adiOrder {
		cfg.Order = compact.OrderADI
	}
	cfg.Control = ctl
	cfg.Obs = ort.Observer()
	cfg.Warn = os.Stderr

	switch {
	case *circuit != "":
		row, art, err := core.RunTranslate(*circuit, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scantrans:", err)
			os.Exit(1)
		}
		fmt.Printf("circuit %s: %d conventional tests, %d cycles conventional application\n",
			row.Circ, len(art.Base.Tests), row.Cycles)
		fmt.Printf("translated length %d (%d scan vectors)\n", row.TestLen, row.TestScan)
		fmt.Printf("after restoration: %d (%d scan)\n", row.RestorLen, row.RestorScan)
		fmt.Printf("after omission:    %d (%d scan)\n", row.OmitLen, row.OmitScan)
		if *printSet {
			fmt.Println()
			fmt.Print(report.TestSetTable(art.Base.Tests,
				fmt.Sprintf("Conventional test set for %s_scan (Table 2 style)", row.Circ)))
		}
		if *printTrans {
			fmt.Println()
			fmt.Print(report.SequenceTable(art.Scan, art.Translated,
				fmt.Sprintf("Translated test sequence for %s_scan (Table 3 style)", row.Circ)))
		}
		if *printFinal {
			fmt.Println()
			fmt.Print(report.SequenceTable(art.Scan, art.Omitted,
				fmt.Sprintf("Compacted translated sequence for %s_scan", row.Circ)))
		}
		if ctl != nil {
			fmt.Println(report.RunBanner(row.Status, rc.Checkpoint))
		}
	case *suite != "":
		var names []string
		switch *suite {
		case "small":
			names = core.SmallSuite
		case "medium":
			names = core.MediumSuite
		case "full":
			names = core.FullSuite
		case "table7":
			names = core.Table7Suite
		default:
			fmt.Fprintf(os.Stderr, "scantrans: unknown suite %q\n", *suite)
			os.Exit(2)
		}
		prog := core.Progress{}
		if *verbose {
			prog.Log = os.Stderr
		}
		rows, err := core.RunTranslateSuite(names, cfg, prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scantrans:", err)
			os.Exit(1)
		}
		fmt.Print(report.Table7(rows))
	default:
		fmt.Fprintln(os.Stderr, "scantrans: need -circuit NAME or -suite small|medium|full|table7")
		flag.Usage()
		os.Exit(2)
	}
	if s := ort.Summary(); s != nil {
		if out := report.ObsSummary(*s); out != "" {
			fmt.Println()
			fmt.Print(out)
		}
	}
	if err := ort.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "scantrans:", err)
		os.Exit(1)
	}
}
