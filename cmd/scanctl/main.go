// Command scanctl is the CLI client for a scand job server.
//
// Usage:
//
//	scanctl -server http://127.0.0.1:8080 submit -flow generate -circuits s27,s298
//	scanctl list
//	scanctl get job-0001
//	scanctl watch job-0001          # stream events until the job settles
//	scanctl result job-0001         # completed job's result JSON
//	scanctl cancel job-0001
//	scanctl resume job-0001
//	scanctl checkpoints job-0001
//	scanctl top                     # live jobs + worker-fleet view
//
// submit prints the accepted job's status; add -watch to follow the
// event stream and exit non-zero unless the job completes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/jobs"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: scanctl [-server URL] COMMAND [ARGS]

commands:
  submit   -flow generate|translate|simulate|compact -circuits a,b,... [options]
  list     list all jobs
  get      ID            print one job's status
  watch    ID            stream events until the job settles
  result   ID            print a completed job's result JSON
  cancel   ID            cancel (checkpointing; resumable)
  resume   ID            resume a suspended or canceled job
  checkpoints ID [NAME]  list checkpoint artifacts, or dump one
  top      [-interval D] [-once]  live jobs + worker-fleet view
`)
	os.Exit(2)
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "scand base URL")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
	}
	c := &jobs.Client{Base: *server}
	ctx := context.Background()
	cmd, args := flag.Arg(0), flag.Args()[1:]

	var err error
	switch cmd {
	case "submit":
		err = submit(ctx, c, args)
	case "list":
		var list []*jobs.Status
		if list, err = c.List(ctx); err == nil {
			for _, st := range list {
				fmt.Printf("%s  %-9s  %-9s  %d tasks  %s\n",
					st.ID, st.State, st.Spec.Flow, len(st.Tasks), strings.Join(st.Spec.Circuits, ","))
			}
		}
	case "get":
		var st *jobs.Status
		if st, err = c.Get(ctx, arg1(args)); err == nil {
			err = printJSON(st)
		}
	case "watch":
		err = watch(ctx, c, arg1(args))
	case "result":
		var data []byte
		if data, err = c.Result(ctx, arg1(args)); err == nil {
			os.Stdout.Write(data)
		}
	case "cancel":
		var st *jobs.Status
		if st, err = c.Cancel(ctx, arg1(args)); err == nil {
			fmt.Printf("%s %s (resumable=%v)\n", st.ID, st.State, st.Resumable)
		}
	case "resume":
		var st *jobs.Status
		if st, err = c.Resume(ctx, arg1(args)); err == nil {
			fmt.Printf("%s %s\n", st.ID, st.State)
		}
	case "checkpoints":
		err = checkpoints(ctx, c, args)
	case "top":
		err = top(ctx, c, args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanctl:", err)
		os.Exit(1)
	}
}

func arg1(args []string) string {
	if len(args) != 1 {
		usage()
	}
	return args[0]
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func submit(ctx context.Context, c *jobs.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var sp jobs.Spec
	var circuits string
	var doWatch bool
	fs.StringVar(&sp.Flow, "flow", "", "flow: generate, translate, simulate or compact")
	fs.StringVar(&circuits, "circuits", "", "comma-separated catalog circuits")
	fs.Uint64Var(&sp.Seed, "seed", 0, "random seed (0 = 1)")
	fs.BoolVar(&sp.NoCollapse, "no-collapse", false, "disable fault collapsing")
	fs.IntVar(&sp.Chains, "chains", 0, "scan chains (generate flow)")
	fs.IntVar(&sp.Workers, "workers", 0, "per-task fault-simulation workers (0 = GOMAXPROCS)")
	fs.StringVar(&sp.Engine, "engine", "", "compaction engine: auto, incremental or scratch")
	fs.BoolVar(&sp.AdiOrder, "adi-order", false, "ADI restoration order")
	fs.BoolVar(&sp.SkipBaseline, "skip-baseline", false, "skip the conventional-scan baseline")
	fs.BoolVar(&sp.SkipCompaction, "skip-compaction", false, "skip compaction")
	fs.IntVar(&sp.Partitions, "partitions", 0, "fault shards per circuit (simulate flow)")
	fs.IntVar(&sp.SeqLen, "seq-len", 0, "sequence length (simulate/compact flows; 0 = 128)")
	fs.IntVar(&sp.OmitShards, "omit-shards", 0, "omission window chunks per circuit (compact flow; 0 = 1)")
	fs.IntVar(&sp.Priority, "priority", 0, "queue priority class (higher runs first)")
	fs.Int64Var(&sp.TimeoutMS, "timeout-ms", 0, "job wall-clock budget in ms")
	fs.Int64Var(&sp.MaxAttempts, "max-attempts", 0, "per-task generation attempt cap")
	fs.Int64Var(&sp.MaxTrials, "max-trials", 0, "per-task compaction trial cap")
	fs.StringVar(&sp.Tenant, "tenant", "", "tenant for fair scheduling")
	fs.BoolVar(&doWatch, "watch", false, "follow the event stream and wait for completion")
	fs.Parse(args)
	if circuits != "" {
		sp.Circuits = strings.Split(circuits, ",")
	}
	st, err := c.Submit(ctx, sp)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted %s (%d tasks)\n", st.ID, len(st.Tasks))
	if !doWatch {
		return printJSON(st)
	}
	return watch(ctx, c, st.ID)
}

func watch(ctx context.Context, c *jobs.Client, id string) error {
	st, err := c.Watch(ctx, id, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s settled: %s\n", st.ID, st.State)
	if st.State != jobs.StateComplete {
		if st.Error != "" {
			return fmt.Errorf("%s: %s", st.State, st.Error)
		}
		return fmt.Errorf("job settled %s", st.State)
	}
	return nil
}

// top renders a live jobs + worker-fleet view, refreshing in place
// until interrupted (or once with -once).
func top(ctx context.Context, c *jobs.Client, args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	fs.Parse(args)
	first := true
	for {
		list, err := c.List(ctx)
		if err != nil {
			return err
		}
		workers, err := c.Workers(ctx)
		if err != nil {
			return err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "JOBS (%d)\n", len(list))
		for _, st := range list {
			done := 0
			for _, t := range st.Tasks {
				if t.Done {
					done++
				}
			}
			tenant := st.Spec.Tenant
			if tenant == "" {
				tenant = "-"
			}
			fmt.Fprintf(&b, "  %s  %-9s  %-9s  prio %2d  tenant %-10s  %3d/%-3d tasks  %s\n",
				st.ID, st.State, st.Spec.Flow, st.Spec.Priority, tenant,
				done, len(st.Tasks), strings.Join(st.Spec.Circuits, ","))
		}
		fmt.Fprintf(&b, "WORKERS (%d leases)\n", len(workers))
		for _, w := range workers {
			fmt.Fprintf(&b, "  %-20s  %s  %s %s  expires %4dms\n",
				w.Worker, w.Lease, w.Job, w.Task, w.ExpiresMS)
		}
		if !first && !*once {
			// Redraw in place: cursor home + erase below.
			fmt.Print("\033[H\033[J")
		}
		os.Stdout.WriteString(b.String())
		if *once {
			return nil
		}
		first = false
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(*interval):
		}
	}
}

func checkpoints(ctx context.Context, c *jobs.Client, args []string) error {
	switch len(args) {
	case 1:
		names, err := c.Checkpoints(ctx, args[0])
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	case 2:
		data, err := c.Checkpoint(ctx, args[0], args[1])
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	default:
		usage()
		return nil
	}
}
