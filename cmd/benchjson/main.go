// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON array on stdout, one object per benchmark
// result line:
//
//	[{"name": "FaultSimScan/s298/event", "iterations": 5,
//	  "metrics": {"ns/op": 2068259, "batchsteps": 1015, ...}}, ...]
//
// Non-benchmark lines (headers, PASS/ok trailers) are ignored, so the
// raw output of `go test -bench ... | benchjson` works directly. See
// `make bench`, which uses it to produce BENCH_sim.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   2 allocs/op   3 custom
//
// (value/unit pairs after the iteration count, go test's standard
// format including b.ReportMetric units).
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
