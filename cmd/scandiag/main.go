// Command scandiag builds a fault dictionary for a test sequence and
// runs dictionary-based diagnosis experiments: it injects each sampled
// fault as the "defect", collects the failures a tester would observe,
// and checks where the true fault ranks among the dictionary's
// candidates.
//
// Usage:
//
//	scandiag -circuit s298                 # generate + compact, then diagnose a sample
//	scandiag -circuit s298 -sample 5       # denser defect sampling
//	scandiag -circuit s298 -seq seq.txt    # diagnose with a given sequence
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuits"
	"repro/internal/compact"
	"repro/internal/diagnose"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/seqatpg"
)

func main() {
	var (
		circuit    = flag.String("circuit", "", "catalog circuit name")
		seqFile    = flag.String("seq", "", "sequence file (default: generate and compact one)")
		seed       = flag.Uint64("seed", 1, "random seed for generation")
		sample     = flag.Int("sample", 13, "diagnose every Nth fault as the defect")
		noCompact  = flag.Bool("no-compact", false, "skip compaction of the generated sequence")
		noCollapse = flag.Bool("no-collapse", false, "disable fault equivalence collapsing")
	)
	flag.Parse()
	if *circuit == "" {
		fmt.Fprintln(os.Stderr, "scandiag: need -circuit NAME")
		flag.Usage()
		os.Exit(2)
	}
	c, err := circuits.Load(*circuit)
	if err != nil {
		fail(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		fail(err)
	}
	faults := fault.Universe(sc.Scan, !*noCollapse)

	var seq logic.Sequence
	if *seqFile != "" {
		data, err := os.ReadFile(*seqFile)
		if err != nil {
			fail(err)
		}
		seq, err = logic.ParseSequence(string(data))
		if err != nil {
			fail(err)
		}
	} else {
		res := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: *seed})
		seq = res.Sequence
		if !*noCompact {
			restored, _ := compact.Restore(sc.Scan, seq, faults)
			seq, _ = compact.Omit(sc.Scan, restored, faults)
		}
	}
	fmt.Printf("circuit %s_scan: %d faults, sequence of %d cycles\n",
		*circuit, len(faults), len(seq))

	d := diagnose.Build(sc.Scan, seq, faults)
	groups := d.Equivalent()
	fmt.Printf("dictionary: diagnostic resolution %.3f, %d indistinguishable groups\n",
		d.Resolution(), len(groups))

	if *sample <= 0 {
		*sample = 13
	}
	trials, top1, top3, exact := 0, 0, 0, 0
	for fi := 0; fi < len(faults); fi += *sample {
		sig := d.Signatures[fi]
		if len(sig) == 0 {
			continue
		}
		trials++
		cands := d.Diagnose(sig)
		if len(cands) == 0 {
			continue
		}
		if cands[0].Missed == 0 && cands[0].Extra == 0 {
			exact++
		}
		for rank, cand := range cands {
			if rank >= 3 {
				break
			}
			if cand.Index == fi {
				top3++
				if rank == 0 {
					top1++
				}
				break
			}
		}
	}
	if trials == 0 {
		fmt.Println("no detected faults to diagnose")
		return
	}
	fmt.Printf("diagnosed %d sampled defects: rank-1 %d (%.0f%%), top-3 %d (%.0f%%), exact signatures %d\n",
		trials, top1, 100*float64(top1)/float64(trials),
		top3, 100*float64(top3)/float64(trials), exact)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "scandiag:", err)
	os.Exit(1)
}
