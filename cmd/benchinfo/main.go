// Command benchinfo prints statistics for catalog circuits and can dump
// them (or their scan-inserted versions) in ISCAS-89 .bench format.
//
// Usage:
//
//	benchinfo -all
//	benchinfo -circuit s27 -dump
//	benchinfo -circuit s298 -scan -dump > s298_scan.bench
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/testability"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "catalog circuit name")
		all     = flag.Bool("all", false, "summarize every catalog circuit")
		dump    = flag.Bool("dump", false, "dump the netlist in .bench format")
		doScan  = flag.Bool("scan", false, "operate on the scan-inserted circuit")
		scoap   = flag.Bool("scoap", false, "print the hardest-to-test signals (SCOAP)")
	)
	flag.Parse()

	switch {
	case *all:
		fmt.Printf("%-8s %5s %5s %5s %6s %7s %7s %10s\n",
			"circ", "in", "out", "ffs", "gates", "levels", "faults", "kind")
		for _, e := range circuits.Catalog() {
			c, err := circuits.Load(e.Name)
			if err != nil {
				fail(err)
			}
			c = maybeScan(c, *doScan)
			st := c.Stats()
			kind := "real"
			if e.Synthetic {
				kind = "synthetic"
			}
			if e.Scaled {
				kind += "/scaled"
			}
			fmt.Printf("%-8s %5d %5d %5d %6d %7d %7d %10s\n",
				e.Name, st.Inputs, st.Outputs, st.FFs, st.Gates, st.MaxLevel,
				len(fault.Universe(c, true)), kind)
		}
	case *circuit != "":
		c, err := circuits.Load(*circuit)
		if err != nil {
			fail(err)
		}
		c = maybeScan(c, *doScan)
		if *dump {
			if err := bench.Write(os.Stdout, c); err != nil {
				fail(err)
			}
			return
		}
		st := c.Stats()
		fmt.Printf("circuit:  %s\n", c.Name)
		fmt.Printf("inputs:   %d\n", st.Inputs)
		fmt.Printf("outputs:  %d\n", st.Outputs)
		fmt.Printf("ffs:      %d\n", st.FFs)
		fmt.Printf("gates:    %d\n", st.Gates)
		fmt.Printf("levels:   %d\n", st.MaxLevel)
		fmt.Printf("faults:   %d collapsed, %d uncollapsed\n",
			len(fault.Universe(c, true)), len(fault.Universe(c, false)))
		if *scoap {
			m := testability.Compute(c)
			fmt.Println("hardest signals (stuck-at-0 detection cost, SCOAP CC1+CO):")
			for _, s := range m.Hardest(c, true, 10) {
				fmt.Printf("  %-12s CC0=%-5d CC1=%-5d CO=%d\n",
					c.SignalName(s), m.CC0[s], m.CC1[s], m.CO[s])
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "benchinfo: need -circuit NAME or -all")
		flag.Usage()
		os.Exit(2)
	}
}

func maybeScan(c *netlist.Circuit, doScan bool) *netlist.Circuit {
	if !doScan {
		return c
	}
	sc, err := scan.Insert(c)
	if err != nil {
		fail(err)
	}
	return sc.Scan
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchinfo:", err)
	os.Exit(1)
}
