// Command xcheck runs the differential and metamorphic cross-checking
// harness (internal/xcheck) over seeded randomized workloads: it pits
// the event-driven kernel, the full-sweep kernel, the pooled Simulator
// at several worker counts and a naive scalar reference simulator
// against each other, and checks the compaction, checkpoint/resume and
// translation invariants listed in ALGORITHMS.md §12.
//
// Usage:
//
//	xcheck -seeds 5 -circuits s27,b02,synth
//	xcheck -circuits all -duration 30s
//
// On a violation, xcheck shrinks the workload to a minimized
// reproduction (drop vectors, faults and tests greedily while the
// invariant still fails), prints it, and exits non-zero. A passing run
// prints the coverage summary and exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/circuits"
	"repro/internal/xcheck"
)

func main() {
	var (
		circuitList = flag.String("circuits", "all", "comma-separated catalog names, or \"all\"; \"synth\" adds a seeded random circuit")
		seeds       = flag.Int("seeds", 1, "seeds per circuit")
		startSeed   = flag.Uint64("start-seed", 1, "first seed")
		duration    = flag.Duration("duration", 0, "soft wall-clock budget (0 = run everything); skipped workloads are reported")
		noShrink    = flag.Bool("no-shrink", false, "report violations without minimizing them")
		verbose     = flag.Bool("v", false, "log per-workload progress")
	)
	flag.Parse()

	var names []string
	if *circuitList == "all" {
		names = append(circuits.Names(), xcheck.SynthCircuit)
	} else {
		for _, n := range strings.Split(*circuitList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "xcheck: no circuits selected")
		os.Exit(2)
	}

	cfg := xcheck.Config{
		Circuits:  names,
		Seeds:     *seeds,
		StartSeed: *startSeed,
		Duration:  *duration,
		Shrink:    !*noShrink,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	violations, sum := xcheck.Run(cfg)
	fmt.Printf("xcheck: %s (%d circuits, %d seeds, wall %v)\n",
		sum, len(names), *seeds, time.Since(start).Round(time.Millisecond))
	if sum.Skipped > 0 {
		fmt.Printf("xcheck: WARNING: coverage incomplete, %d workloads skipped on -duration\n", sum.Skipped)
	}
	if len(violations) == 0 {
		fmt.Println("xcheck: PASS")
		return
	}
	for i, v := range violations {
		fmt.Printf("\n--- violation %d of %d ---\n%s", i+1, len(violations), v.Repro())
	}
	fmt.Printf("\nxcheck: FAIL: %d violations\n", len(violations))
	os.Exit(1)
}
