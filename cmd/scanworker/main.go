// Command scanworker is a remote task worker for a scand job server.
// It claims leased tasks over HTTP, runs them through the same engine
// code path as scand's in-process pool, heartbeats each lease with its
// current checkpoint so a crash costs at most one heartbeat interval
// of work, and uploads results. Any number of scanworker processes —
// on the scand host or other machines — drain the same queue.
//
// Usage:
//
//	scanworker -server http://127.0.0.1:8080 -name worker-a
//
// SIGTERM or SIGINT stops gracefully: the in-flight task checkpoints,
// releases its lease back to the queue, and the process exits. A
// second signal exits immediately. A killed (SIGKILL) scanworker loses
// its lease to the server's janitor after the lease TTL; the task
// re-runs elsewhere from the last heartbeated checkpoint with a
// byte-identical final result.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/failpoint"
	"repro/internal/jobs"
)

func main() {
	var (
		server     = flag.String("server", "http://127.0.0.1:8080", "scand base URL")
		name       = flag.String("name", "", "worker name shown in leases and `scanctl top` (default host-pid)")
		data       = flag.String("data", "", "local checkpoint scratch directory (default under the system temp dir)")
		poll       = flag.Duration("poll", 250*time.Millisecond, "idle claim interval")
		failpoints = flag.String("failpoints", "", "arm fault-injection sites for failure testing (see internal/failpoint)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "scanworker: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logger := log.New(os.Stderr, "scanworker["+*name+"]: ", log.LstdFlags)

	if *failpoints != "" {
		if err := failpoint.Enable(*failpoints, 1); err != nil {
			logger.Fatal(err)
		}
	}
	if *data == "" {
		dir, err := os.MkdirTemp("", "scanworker-")
		if err != nil {
			logger.Fatal(err)
		}
		defer os.RemoveAll(dir)
		*data = dir
	}

	w, err := jobs.NewWorker(jobs.WorkerOptions{
		Server:  *server,
		Name:    *name,
		DataDir: *data,
		Poll:    *poll,
		Logf:    logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Printf("%v — stopping: in-flight task checkpoints and releases its lease (signal again to quit now)", s)
		cancel()
		<-sig
		os.Exit(130)
	}()

	logger.Printf("claiming from %s", *server)
	if err := w.Run(ctx); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("stopped")
}
