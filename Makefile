GO ?= go

.PHONY: build test race vet bench fuzz clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs the fault-simulation benchmarks and writes a
# machine-readable summary (ns/op, allocs/op, batchsteps, fastfwd, ...)
# to BENCH_sim.json via cmd/benchjson. -benchtime can be overridden:
#   make bench BENCHTIME=10x
BENCHTIME ?= 1s

bench:
	{ $(GO) test -run '^$$' -bench 'FaultSimScan|RunSubsetScan|Run$$|StepClean|StepFaulty' \
		-benchmem -benchtime $(BENCHTIME) ./internal/sim/ && \
	  $(GO) test -run '^$$' -bench 'Compaction' -benchmem -benchtime 1x ./internal/compact/ ; } | \
		tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_sim.json

# fuzz runs the .bench parser fuzzer for a short smoke interval, as CI
# does. Override with FUZZTIME=5m for a longer local run.
FUZZTIME ?= 20s

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime $(FUZZTIME) ./internal/bench

clean:
	rm -f BENCH_sim.json
