GO ?= go

.PHONY: build test race vet bench bench-compact bench-jobs fuzz metrics-check scand-smoke xcheck soak clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs the fault-simulation benchmarks and writes a
# machine-readable summary (ns/op, allocs/op, batchsteps, fastfwd, ...)
# to BENCH_sim.json via cmd/benchjson. -benchtime can be overridden:
#   make bench BENCHTIME=10x
BENCHTIME ?= 1s

bench:
	{ $(GO) test -run '^$$' -bench 'FaultSimScan|RunSubsetScan|Run$$|StepClean|StepFaulty' \
		-benchmem -benchtime $(BENCHTIME) ./internal/sim/ && \
	  $(GO) test -run '^$$' -bench 'Compaction' -benchmem -benchtime 1x ./internal/compact/ ; } | \
		tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_sim.json

# bench-compact runs the compaction trial-engine benchmarks — the
# incremental engine against the serial scratch reference across worker
# counts (trial throughput, prefix-cache reuse, reconvergence cutoffs)
# plus the ADI scoring pass — and writes BENCH_compact.json:
#   make bench-compact BENCHTIME=1x     # CI smoke
bench-compact:
	$(GO) test -run '^$$' -bench 'CompactionEngines|ADIScores' \
		-benchmem -benchtime $(BENCHTIME) ./internal/compact/ | \
		tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_compact.json

# bench-jobs measures job-server throughput on a multi-circuit compact
# job (restore stage + chained omission chunks per circuit) at one
# worker versus a fleet — tasks/s and wall-clock speedup, with the two
# runs' result bytes required identical — and writes BENCH_jobs.json.
bench-jobs:
	$(GO) run ./cmd/benchjobs

# fuzz runs the .bench parser fuzzer for a short smoke interval, as CI
# does. Override with FUZZTIME=5m for a longer local run.
FUZZTIME ?= 20s

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime $(FUZZTIME) ./internal/bench

# metrics-check exercises the -metrics flight recorder end to end: a
# tiny s27 generation+compaction run writes a JSONL file, and
# cmd/metricscheck validates it against the schema (ALGORITHMS.md §11).
metrics-check:
	tmp=$$(mktemp /tmp/metrics.XXXXXX.jsonl); \
	trap 'rm -f $$tmp' EXIT; \
	$(GO) run ./cmd/scangen -circuit s27 -compact -no-baseline -metrics $$tmp >/dev/null && \
	$(GO) run ./cmd/metricscheck $$tmp

# scand-smoke exercises the ATPG job server end to end: start scand on
# an ephemeral port, run jobs through the HTTP API with scanctl,
# validate the streamed events with metricscheck, compare a sharded
# simulate job byte-for-byte against an unsharded one, and require a
# clean SIGTERM drain (README "Serving jobs", ALGORITHMS.md §15).
scand-smoke:
	GO="$(GO)" sh scripts/scand_smoke.sh

# xcheck runs the differential/metamorphic cross-check harness
# (ALGORITHMS.md §12) on fixed seeds across every catalog circuit plus
# a seeded synthetic one, under the race detector. A violation prints a
# minimized reproduction and fails the target. Override the seed count
# with XCHECK_SEEDS=5 for a longer local hunt.
XCHECK_SEEDS ?= 1

xcheck:
	$(GO) run -race ./cmd/xcheck -circuits all -seeds $(XCHECK_SEEDS) -start-seed 1

# soak runs the crash/resume soak harness (ALGORITHMS.md §14) under
# the race detector: every iteration kills a flow child at a random
# checkpoint-store or metrics-append failpoint, resumes it, and asserts
# the final output is bit-identical to an uninterrupted run. Override
# with SOAK_ITERS=40 for a CI-sized smoke.
SOAK_ITERS ?= 200

soak:
	$(GO) run -race ./cmd/crashsoak -iters $(SOAK_ITERS) -seed 1

clean:
	rm -f BENCH_sim.json BENCH_compact.json
