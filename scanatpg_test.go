package scanatpg

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	c, err := LoadBenchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := InsertScan(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := Faults(sc.Scan, true)
	if len(faults) == 0 {
		t.Fatal("no faults")
	}
	gen := Generate(sc, faults, GenerateOptions{Seed: 1})
	if gen.NumDetected() != len(faults) {
		t.Fatalf("s27 coverage %d/%d", gen.NumDetected(), len(faults))
	}
	compacted, stats := Compact(sc, gen.Sequence, faults, CompactOptions{})
	if len(compacted) > len(gen.Sequence) {
		t.Error("compaction grew the sequence")
	}
	if stats.Simulations == 0 {
		t.Error("no simulations recorded")
	}
	times := Simulate(sc.Scan, compacted, faults)
	for fi, tm := range times {
		if tm < 0 {
			t.Errorf("fault %d lost after compaction", fi)
		}
	}
}

func TestFacadeBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) < 20 {
		t.Errorf("catalog too small: %d", len(names))
	}
	if names[0] != "s27" {
		t.Errorf("first benchmark = %s", names[0])
	}
}

func TestFacadeBenchRoundTrip(t *testing.T) {
	c, _ := LoadBenchmark("s27")
	text := FormatBench(c)
	c2, err := ParseBench(strings.NewReader(text), "s27")
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != c.NumGates() {
		t.Error("bench round trip changed the circuit")
	}
}

func TestFacadeBuilderAndGateTypes(t *testing.T) {
	b := NewBuilder("t")
	b.AddInput("a")
	b.AddInput("bb")
	b.AddGate(NandGate, "n", "a", "bb")
	b.AddGate(XorGate, "x", "a", "n")
	b.AddFF("q", "x")
	b.MarkOutput("q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := InsertScan(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := Faults(sc.Scan, true)
	gen := Generate(sc, faults, GenerateOptions{Seed: 1})
	if gen.NumDetected() == 0 {
		t.Error("nothing detected on the custom circuit")
	}
}

func TestFacadeTranslateFlow(t *testing.T) {
	c, _ := LoadBenchmark("s27")
	sc, _ := InsertScan(c)
	faults := Faults(c, true)
	tests := FirstApproachTestSet(c, faults, 1)
	if len(tests) == 0 {
		t.Fatal("first-approach set empty")
	}
	seq, err := Translate(sc, tests, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != ConventionalCycles(tests, sc.NSV) {
		t.Error("translated length != conventional cycles")
	}
	scanFaults := Faults(sc.Scan, true)
	restored, _ := Restore(sc, seq, scanFaults, CompactOptions{})
	omitted, _ := Omit(sc, restored, scanFaults, CompactOptions{})
	if len(omitted) > len(restored) || len(restored) > len(seq) {
		t.Error("compaction not monotone")
	}
}

func TestFacadeFlows(t *testing.T) {
	cfg := DefaultFlowConfig()
	cfg.SkipBaseline = true
	row, err := RunGenerateFlow("s27", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Circ != "s27" || row.Detected == 0 {
		t.Errorf("row = %+v", row)
	}
	trow, err := RunTranslateFlow("s27", DefaultFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if trow.OmitLen == 0 || trow.Cycles == 0 {
		t.Errorf("trow = %+v", trow)
	}
}

func TestFacadeBaseline(t *testing.T) {
	c, _ := LoadBenchmark("s27")
	faults := Faults(c, true)
	res := GenerateBaseline(c, faults, BaselineOptions{Seed: 1})
	if res.Cycles <= 0 || len(res.Tests) == 0 {
		t.Errorf("baseline = %d tests, %d cycles", len(res.Tests), res.Cycles)
	}
}
