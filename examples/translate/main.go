// Translating a legacy scan test set (the paper's Section 3).
//
// A first-approach combinational test set — one (scan-in state,
// vector) pair per fault, as classic scan ATPG produces — is flattened
// into a single test sequence for C_scan in which scan operations are
// explicit vectors, then compacted with procedures for non-scan
// circuits. The compacted sequence applies in fewer clock cycles than
// the conventional schedule even though it came from the very same
// tests.
//
// Run with:
//
//	go run ./examples/translate [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	scanatpg "repro"
	"repro/internal/report"
)

func main() {
	name := "s344"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	c, err := scanatpg.LoadBenchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := scanatpg.InsertScan(c)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: a legacy first-approach test set on the original
	// circuit: full state controllability, |T| = 1 per test.
	origFaults := scanatpg.Faults(c, true)
	tests := scanatpg.FirstApproachTestSet(c, origFaults, 1)
	cycles := scanatpg.ConventionalCycles(tests, sc.NSV)
	fmt.Printf("legacy first-approach test set: %d tests\n", len(tests))
	fmt.Printf("conventional application: %d cycles (%d-cycle scan per test)\n\n",
		cycles, sc.NSV)
	if len(tests) <= 8 {
		fmt.Print(report.TestSetTable(tests, "test set"))
		fmt.Println()
	}

	// Step 2: translation into one flat C_scan sequence.
	seq, err := scanatpg.Translate(sc, tests, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("translated sequence: %d vectors (equals the conventional cycle count)\n", len(seq))

	// Step 3: compaction with non-scan procedures. Complete scan
	// operations may now shrink into limited ones.
	scanFaults := scanatpg.Faults(sc.Scan, true)
	restored, rst := scanatpg.Restore(sc, seq, scanFaults, scanatpg.CompactOptions{})
	omitted, ost := scanatpg.Omit(sc, restored, scanFaults, scanatpg.CompactOptions{})
	fmt.Printf("after vector restoration: %d vectors (%d targets)\n", len(restored), rst.TargetFaults)
	fmt.Printf("after vector omission:    %d vectors (%d trial simulations)\n", len(omitted), ost.Simulations)
	fmt.Printf("\ntest application time: %d -> %d cycles (%.0f%% saved) with the same test set\n",
		cycles, len(omitted), 100-100*float64(len(omitted))/float64(cycles))

	// Confidence check: the compacted sequence still detects at least
	// as many scan-circuit faults as the translated one.
	before := countDetected(scanatpg.Simulate(sc.Scan, seq, scanFaults))
	after := countDetected(scanatpg.Simulate(sc.Scan, omitted, scanFaults))
	fmt.Printf("detected faults on C_scan: %d before compaction, %d after\n", before, after)
}

func countDetected(times []int) int {
	n := 0
	for _, t := range times {
		if t >= 0 {
			n++
		}
	}
	return n
}
