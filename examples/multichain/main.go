// Multiple scan chains: the paper's noted generalization.
//
// The same Section 2 generator runs unchanged on a circuit with 1, 2
// and 4 scan chains (scan_sel shared, one scan_inp/scan_out per chain).
// More chains shorten every scan operation — a complete load takes only
// the longest chain's length — so the compacted test application time
// drops further.
//
// Run with:
//
//	go run ./examples/multichain [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	scanatpg "repro"
)

func main() {
	name := "s298"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	c, err := scanatpg.LoadBenchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d flip-flops\n\n", name, c.NumFFs())
	fmt.Printf("%7s %8s %7s %7s %10s %10s\n",
		"chains", "maxlen", "faults", "fcov%", "raw cyc", "compact cyc")

	for _, n := range []int{1, 2, 4} {
		ch, err := scanatpg.InsertScanChains(c, n)
		if err != nil {
			log.Fatal(err)
		}
		faults := scanatpg.Faults(ch.Scan, true)
		gen := scanatpg.Generate(ch, faults, scanatpg.GenerateOptions{Seed: 1})
		restored, _ := scanatpg.Restore(ch, gen.Sequence, faults, scanatpg.CompactOptions{})
		omitted, _ := scanatpg.Omit(ch, restored, faults, scanatpg.CompactOptions{})
		fcov := 100 * float64(gen.NumDetected()) / float64(len(faults))
		fmt.Printf("%7d %8d %7d %7.2f %10d %10d\n",
			n, ch.MaxLen(), len(faults), fcov, len(gen.Sequence), len(omitted))
	}
	fmt.Println("\nmore chains -> shorter scan operations -> shorter compacted sequences,")
	fmt.Println("with the generator and compaction procedures completely unchanged.")
}
