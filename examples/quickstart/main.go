// Quickstart: the full paper flow on the real s27 benchmark.
//
// Loads s27, inserts a scan chain, generates a test sequence with the
// Section 2 procedure (scan_sel/scan_inp treated as ordinary inputs),
// compacts it with restoration + omission, and compares the result to
// conventional complete-scan testing.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	scanatpg "repro"
)

func main() {
	c, err := scanatpg.LoadBenchmark("s27")
	if err != nil {
		log.Fatal(err)
	}
	sc, err := scanatpg.InsertScan(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d inputs, %d flip-flops\n", c.Name, c.NumInputs(), c.NumFFs())
	fmt.Printf("scan circuit %s: %d inputs (incl. scan_sel, scan_inp), %d outputs (incl. scan_out)\n\n",
		sc.Scan.Name, sc.Scan.NumInputs(), sc.Scan.NumOutputs())

	// The fault universe of C_scan includes the scan multiplexers.
	faults := scanatpg.Faults(sc.Scan, true)
	fmt.Printf("targeting %d collapsed stuck-at faults\n", len(faults))

	gen := scanatpg.Generate(sc, faults, scanatpg.GenerateOptions{Seed: 1})
	fmt.Printf("generated: %d detected (%d via scan knowledge), %d clock cycles\n",
		gen.NumDetected(), gen.NumFunct(), len(gen.Sequence))

	compacted, stats := scanatpg.Compact(sc, gen.Sequence, faults, scanatpg.CompactOptions{})
	fmt.Printf("compacted: %d clock cycles (%d fault simulations)\n",
		len(compacted), stats.Simulations)

	// Conventional comparison: a second-approach scan test set with
	// complete scan operations.
	origFaults := scanatpg.Faults(c, true)
	base := scanatpg.GenerateBaseline(c, origFaults, scanatpg.BaselineOptions{Seed: 1})
	fmt.Printf("\nconventional scan testing: %d tests, %d clock cycles\n",
		len(base.Tests), base.Cycles)
	fmt.Printf("new approach:              %d clock cycles (%.0f%% of conventional)\n",
		len(compacted), 100*float64(len(compacted))/float64(base.Cycles))

	// The compacted sequence really does detect everything it claims:
	// verify with the independent fault simulator.
	det := 0
	for _, t := range scanatpg.Simulate(sc.Scan, compacted, faults) {
		if t >= 0 {
			det++
		}
	}
	fmt.Printf("\nindependent fault simulation of the compacted sequence: %d/%d detected\n",
		det, len(faults))
}
