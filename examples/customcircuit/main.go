// Custom circuit: running the flow on your own design.
//
// Builds a small serial parity checker with a 4-bit shift history
// programmatically (no .bench file needed), inserts scan, and runs
// generation and compaction through the public API. This is the path a
// downstream user takes for a circuit that is not in the catalog.
//
// Run with:
//
//	go run ./examples/customcircuit
package main

import (
	"fmt"
	"log"
	"strings"

	scanatpg "repro"
)

// build constructs the example design: din shifts through a 4-stage
// history; "match" fires when the history equals 1011 and the enable is
// set; a parity flip-flop accumulates XORs of din.
func build() (*scanatpg.Circuit, error) {
	b := scanatpg.NewBuilder("parity4")
	b.AddInput("din")
	b.AddInput("en")

	// 4-stage shift history of din.
	b.AddFF("h0", "din")
	b.AddFF("h1", "h0")
	b.AddFF("h2", "h1")
	b.AddFF("h3", "h2")

	// Pattern match 1011 (h3=1, h2=0, h1=1, h0=1) gated by en.
	b.AddGate(scanatpg.NotGate, "n2", "h2")
	b.AddGate(scanatpg.AndGate, "m0", "h3", "n2")
	b.AddGate(scanatpg.AndGate, "m1", "h1", "h0")
	b.AddGate(scanatpg.AndGate, "match", "m0", "m1", "en")

	// Running parity of din.
	b.AddGate(scanatpg.XorGate, "pnext", "par", "din")
	b.AddFF("par", "pnext")

	b.MarkOutput("match")
	b.MarkOutput("par")
	return b.Build()
}

func main() {
	c, err := build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d inputs, %d flip-flops, %d gates\n",
		c.Name, c.NumInputs(), c.NumFFs(), c.NumGates())
	fmt.Println(strings.Repeat("-", 50))
	fmt.Print(scanatpg.FormatBench(c))
	fmt.Println(strings.Repeat("-", 50))

	sc, err := scanatpg.InsertScan(c)
	if err != nil {
		log.Fatal(err)
	}
	faults := scanatpg.Faults(sc.Scan, true)
	gen := scanatpg.Generate(sc, faults, scanatpg.GenerateOptions{Seed: 1})
	fmt.Printf("\ngenerated %d-cycle sequence, %d/%d faults detected (%d via scan knowledge)\n",
		len(gen.Sequence), gen.NumDetected(), len(faults), gen.NumFunct())

	compacted, _ := scanatpg.Compact(sc, gen.Sequence, faults, scanatpg.CompactOptions{})
	fmt.Printf("compacted to %d cycles\n", len(compacted))

	// Show the final sequence; for a 5-flip-flop chain the limited
	// scan operations are easy to spot in the scan_sel column.
	fmt.Println("\nfinal sequence (din en | scan_sel scan_inp):")
	for t, v := range compacted {
		fmt.Printf("%3d  %v %v | %v %v\n", t, v[0], v[1], v[sc.SelPI], v[sc.InpPI])
	}
}
