// Limited-scan study: why eliminating the scan/functional distinction
// pays off.
//
// For one benchmark circuit this example contrasts three ways of
// applying tests:
//
//  1. conventional complete-scan testing (every scan operation shifts
//     the whole chain);
//  2. the same conventional test set translated into a flat C_scan
//     sequence and compacted — complete scans become limited scans;
//  3. native Section 2 generation on C_scan plus compaction.
//
// It prints the scan_sel=1 run-length histograms, which show limited
// scan operations (runs shorter than the chain) appearing as soon as
// the distinction is dropped.
//
// Run with:
//
//	go run ./examples/limitedscan [circuit]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	scanatpg "repro"
	"repro/internal/report"
)

func main() {
	name := "s298"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	c, err := scanatpg.LoadBenchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := scanatpg.InsertScan(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s, chain length %d\n\n", name, sc.NSV)

	origFaults := scanatpg.Faults(c, true)
	scanFaults := scanatpg.Faults(sc.Scan, true)

	// 1. Conventional testing: every scan operation is complete.
	base := scanatpg.GenerateBaseline(c, origFaults, scanatpg.BaselineOptions{Seed: 1})
	fmt.Printf("1. conventional complete-scan testing: %d tests, %d cycles\n",
		len(base.Tests), base.Cycles)
	fmt.Printf("   every scan operation shifts all %d positions\n\n", sc.NSV)

	// 2. Translate the same tests and compact.
	translated, err := scanatpg.Translate(sc, base.Tests, 7)
	if err != nil {
		log.Fatal(err)
	}
	compacted, _ := scanatpg.Compact(sc, translated, scanFaults, scanatpg.CompactOptions{})
	fmt.Printf("2. translated + compacted: %d cycles (%.0f%% of conventional)\n",
		len(compacted), 100*float64(len(compacted))/float64(base.Cycles))
	printRuns(sc, compacted)

	// 3. Native generation on C_scan and compaction.
	gen := scanatpg.Generate(sc, scanFaults, scanatpg.GenerateOptions{Seed: 1})
	native, _ := scanatpg.Compact(sc, gen.Sequence, scanFaults, scanatpg.CompactOptions{})
	fmt.Printf("\n3. native C_scan generation + compaction: %d cycles (%.0f%% of conventional)\n",
		len(native), 100*float64(len(native))/float64(base.Cycles))
	printRuns(sc, native)
}

func printRuns(sc *scanatpg.ScanCircuit, seq scanatpg.Sequence) {
	runs := report.ScanRuns(sc, seq)
	var lens []int
	for l := range runs {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	limited := 0
	fmt.Print("   scan_sel=1 runs: ")
	for _, l := range lens {
		fmt.Printf("len %d ×%d  ", l, runs[l])
		if l < sc.NSV {
			limited += runs[l]
		}
	}
	fmt.Printf("\n   limited scan operations (run < %d): %d\n", sc.NSV, limited)
}
