// Fault diagnosis with a compact test sequence.
//
// Builds a fault dictionary for a generated-and-compacted C_scan test
// sequence, then plays defective parts: for a sample of faults, the
// "tester" observes that fault's failures and the dictionary ranks
// candidates. Because scan operations are explicit vectors in this
// representation, every failure cycle is observable and the compacted
// sequence keeps high diagnostic resolution.
//
// Run with:
//
//	go run ./examples/diagnosis [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	scanatpg "repro"
)

func main() {
	name := "s298"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	c, err := scanatpg.LoadBenchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := scanatpg.InsertScan(c)
	if err != nil {
		log.Fatal(err)
	}
	faults := scanatpg.Faults(sc.Scan, true)
	gen := scanatpg.Generate(sc, faults, scanatpg.GenerateOptions{Seed: 1})
	seq, _ := scanatpg.Compact(sc, gen.Sequence, faults, scanatpg.CompactOptions{})
	fmt.Printf("circuit %s: %d faults, compact sequence of %d cycles\n", name, len(faults), len(seq))

	dict := scanatpg.BuildDictionary(sc.Scan, seq, faults)
	fmt.Printf("dictionary built: diagnostic resolution %.3f, %d indistinguishable groups\n\n",
		dict.Resolution(), len(dict.Equivalent()))

	// Play defective parts: every 17th fault acts as the real defect.
	exact, top1, top3, trials := 0, 0, 0, 0
	for fi := 0; fi < len(faults); fi += 17 {
		observed := dict.Signatures[fi]
		if len(observed) == 0 {
			continue // undetected fault: no failures to diagnose from
		}
		trials++
		cands := dict.Diagnose(observed)
		if len(cands) == 0 {
			continue
		}
		if cands[0].Missed == 0 && cands[0].Extra == 0 {
			exact++
		}
		for rank, cand := range cands {
			if rank >= 3 {
				break
			}
			if cand.Index == fi {
				top3++
				if rank == 0 {
					top1++
				}
				break
			}
		}
	}
	fmt.Printf("diagnosed %d defective parts:\n", trials)
	fmt.Printf("  true fault ranked #1:    %d (%.0f%%)\n", top1, 100*float64(top1)/float64(trials))
	fmt.Printf("  true fault in top 3:     %d (%.0f%%)\n", top3, 100*float64(top3)/float64(trials))
	fmt.Printf("  exact-signature matches: %d\n", exact)
	fmt.Println("\n(ties come from faults the sequence cannot distinguish —")
	fmt.Println(" the dictionary's Equivalent() groups list them explicitly)")
}
